// Package keyword is the query-string matching substrate of a servent's
// content layer: a tokenizer and an inverted index answering conjunctive
// keyword queries ("all words must appear"), the matching rule Gnutella
// clients applied to shared-file names. internal/vantage uses it to answer
// queries; it is also the hook for the §VI idea of clustering rule
// dimensions by query string.
package keyword

import (
	"sort"
	"strings"
)

// Tokenize splits text into lowercase alphanumeric tokens; everything else
// separates. "Free_Software-2.0.tar" -> ["free", "software", "2", "0",
// "tar"].
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

// Index is an inverted index from token to the sorted set of document ids
// containing it. The zero value is unusable; construct with NewIndex.
type Index struct {
	postings map[string][]int32
	docs     map[int32]bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{postings: make(map[string][]int32), docs: make(map[int32]bool)}
}

// Add indexes document id under every token of text. Adding the same id
// twice merges its tokens.
func (ix *Index) Add(id int32, text string) {
	ix.docs[id] = true
	for _, tok := range Tokenize(text) {
		lst := ix.postings[tok]
		pos := sort.Search(len(lst), func(i int) bool { return lst[i] >= id })
		if pos < len(lst) && lst[pos] == id {
			continue
		}
		lst = append(lst, 0)
		copy(lst[pos+1:], lst[pos:])
		lst[pos] = id
		ix.postings[tok] = lst
	}
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.docs) }

// Query returns the ids of documents containing every token of text, in
// ascending order. An empty or tokenless query matches nothing (a servent
// never answers empty searches).
func (ix *Index) Query(text string) []int32 {
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return nil
	}
	// Intersect postings smallest-first.
	lists := make([][]int32, 0, len(tokens))
	seen := map[string]bool{}
	for _, tok := range tokens {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		lst, ok := ix.postings[tok]
		if !ok {
			return nil
		}
		lists = append(lists, lst)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	result := lists[0]
	for _, lst := range lists[1:] {
		result = intersect(result, lst)
		if len(result) == 0 {
			return nil
		}
	}
	// Copy so callers cannot mutate postings.
	out := make([]int32, len(result))
	copy(out, result)
	return out
}

// intersect merges two ascending id lists.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
