package arq

// End-to-end integration tests across modules: the full §IV pipeline
// (generate raw capture → JSONL round trip → relational import → block
// source → policy → measures), and the deployment stack (overlay →
// content → engines → routers).
import (
	"bytes"
	"testing"

	"arq/internal/content"
	"arq/internal/core"
	"arq/internal/db"
	"arq/internal/overlay"
	"arq/internal/peer"
	"arq/internal/routing"
	"arq/internal/sim"
	"arq/internal/stats"
	"arq/internal/trace"
	"arq/internal/tracegen"
)

func TestEndToEndCapturePipeline(t *testing.T) {
	// 1. Capture raw traffic at the vantage node.
	cfg := tracegen.PaperProfile()
	cfg.Seed = 77
	gen := tracegen.New(cfg)
	qs, rs := gen.GenerateRaw(120_000)

	// 2. Serialize the capture and read it back (the on-disk format).
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, q := range qs {
		if err := w.WriteQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rs {
		if err := w.WriteReply(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	qs2, rs2, _, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs2) != len(qs) || len(rs2) != len(rs) {
		t.Fatalf("round trip lost records: %d/%d queries, %d/%d replies",
			len(qs2), len(qs), len(rs2), len(rs))
	}

	// 3. Import through the relational pipeline (dedup + join).
	imp, err := db.Import(qs2, rs2)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Stats.DuplicateGUIDs == 0 {
		t.Fatal("capture should contain duplicate GUIDs (misbehaving clients)")
	}
	pairs := imp.PairSlice()
	if len(pairs) != imp.Stats.Pairs || len(pairs) == 0 {
		t.Fatalf("pairs = %d, stats = %+v", len(pairs), imp.Stats)
	}

	// 4. Drive a policy over the imported pairs and check the measures
	// are sane and consistent with the trace's locality.
	src := trace.NewSliceSource(pairs, 5000)
	res := sim.Run("sliding", &core.Sliding{Prune: 5}, src, 0)
	if res.Trials < 4 {
		t.Fatalf("too few trials: %d", res.Trials)
	}
	if res.MeanCoverage() < 0.5 || res.MeanSuccess() < 0.5 {
		t.Fatalf("imported-trace quality too low: α=%.3f ρ=%.3f",
			res.MeanCoverage(), res.MeanSuccess())
	}
}

func TestEndToEndRuleSetPersistence(t *testing.T) {
	// A node learns rules from one block, persists them, restarts, and
	// routes with the restored state.
	cfg := tracegen.PaperProfile()
	cfg.Seed = 78
	cfg.TotalBlocks = 2
	gen := tracegen.New(cfg)
	genBlock, _ := gen.Next()
	testBlock, _ := gen.Next()
	rules := core.GenerateRuleSet(genBlock, 10)

	var buf bytes.Buffer
	if err := rules.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadRuleSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := rules.Test(testBlock)
	b := restored.Test(testBlock)
	if a != b {
		t.Fatalf("restored rule set scores differently: %+v vs %+v", a, b)
	}
}

func TestEndToEndDeployment(t *testing.T) {
	// Overlay + content + learning router on both engines.
	rng := stats.NewRNG(79)
	g := overlay.GnutellaLike(rng, 400)
	model := content.BuildClustered(rng.Split(), g, content.DefaultConfig())

	e := peer.NewEngine(g, model, func(u int) peer.Router {
		return routing.NewAssoc(routing.DefaultAssocConfig())
	})
	search := &routing.OneShot{Label: "assoc", E: e, TTL: 7}
	routing.RunWorkload(stats.NewRNG(1), search, e, 4000)
	agg := peer.Summarize(routing.RunWorkload(stats.NewRNG(2), search, e, 400))
	if agg.SuccessRate < 0.9 {
		t.Fatalf("deployed success = %.3f", agg.SuccessRate)
	}

	floodE := peer.NewEngine(g, model, func(u int) peer.Router { return routing.Flood{} })
	flood := peer.Summarize(routing.RunWorkload(stats.NewRNG(2),
		&routing.OneShot{Label: "flood", E: floodE, TTL: 7}, floodE, 400))
	if agg.AvgMessages >= flood.AvgMessages {
		t.Fatalf("assoc (%.0f msgs) not cheaper than flooding (%.0f)",
			agg.AvgMessages, flood.AvgMessages)
	}

	// The concurrent engine deploys the same stateless baseline.
	// TTL far above the diameter so async delivery order (which can hand
	// a node its first copy over a longer path) cannot strand any node.
	net := peer.NewActorNet(g, model, func(u int) peer.Router { return routing.Flood{} })
	defer net.Close()
	st := net.RunQuery(3, model.DrawQuery(stats.NewRNG(3), 3), 64)
	if st.NodesReached != g.N() {
		t.Fatalf("actor flood reached %d of %d nodes", st.NodesReached, g.N())
	}
}

func TestExtensionsImproveSuccess(t *testing.T) {
	// §VI: the interest dimension must raise success over plain sliding
	// on the same trace (topics from one neighbor separate), and
	// confidence pruning must shrink rule sets without collapsing
	// success.
	mkSrc := func() trace.Source {
		cfg := tracegen.PaperProfile()
		cfg.Seed = 80
		cfg.TotalBlocks = 41
		return tracegen.New(cfg)
	}
	plain := sim.Run("plain", &core.Sliding{Prune: 10}, mkSrc(), 0)
	interest := sim.Run("interest",
		&core.SlidingExt{Opts: core.GenOptions{Prune: 10, UseInterest: true}}, mkSrc(), 0)
	conf := sim.Run("conf",
		&core.SlidingExt{Opts: core.GenOptions{Prune: 10, MinConfidence: 0.2}}, mkSrc(), 0)

	if interest.MeanSuccess() <= plain.MeanSuccess() {
		t.Fatalf("interest dimension did not raise success: %.3f vs %.3f",
			interest.MeanSuccess(), plain.MeanSuccess())
	}
	if conf.RuleCount.Mean() >= plain.RuleCount.Mean() {
		t.Fatalf("confidence pruning did not shrink rule sets: %.0f vs %.0f",
			conf.RuleCount.Mean(), plain.RuleCount.Mean())
	}
	if conf.MeanSuccess() < plain.MeanSuccess()-0.1 {
		t.Fatalf("confidence pruning collapsed success: %.3f vs %.3f",
			conf.MeanSuccess(), plain.MeanSuccess())
	}
}
