// Livecapture: the paper's §IV-A data path on a live protocol stack. A
// small Gnutella 0.4 network of real TCP servents runs on loopback, a
// modified vantage node in the middle captures the queries it relays and
// the query-hits that return, and routing rules are mined from the live
// capture — trace collection, import, and rule generation end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"arq/internal/core"
	"arq/internal/vantage"
)

func main() {
	// Topology: two querying leaves -> vantage -> two content servers.
	//
	//   leafA ─┐                ┌─ serverX (topics 1,2)
	//          ├── vantage node ┤
	//   leafB ─┘                └─ serverY (topic 3)
	cap := vantage.NewCapture()
	mid, err := vantage.Listen("127.0.0.1:0", vantage.Options{Capture: cap})
	if err != nil {
		log.Fatal(err)
	}
	defer mid.Close()

	mk := func() *vantage.Servent {
		s, err := vantage.Listen("127.0.0.1:0", vantage.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	leafA, leafB, serverX, serverY := mk(), mk(), mk(), mk()
	defer leafA.Close()
	defer leafB.Close()
	defer serverX.Close()
	defer serverY.Close()

	serverX.Share("topic-001 keywords linux-distro.iso", 650_000)
	serverX.Share("topic-002 keywords compilers.tar.gz", 120_000)
	serverY.Share("topic-003 keywords lectures.ogg", 90_000)

	for _, s := range []*vantage.Servent{leafA, leafB, serverX, serverY} {
		if err := s.ConnectTo(mid.Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for mid.NumConns() < 4 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("5 servents up; vantage node %s has %d connections\n",
		mid.Addr(), mid.NumConns())

	// Leaves query their interests repeatedly (interest-based locality:
	// A cares about topics 1-2, B about topic 3).
	searches := []struct {
		who  *vantage.Servent
		text string
	}{
		{leafA, "topic-001 keywords"}, {leafA, "topic-002 keywords"},
		{leafB, "topic-003 keywords"},
	}
	hits := 0
	for round := 0; round < 6; round++ {
		for _, s := range searches {
			hit, err := s.who.Search(s.text, 7, 2*time.Second)
			if err != nil {
				log.Fatalf("search %q: %v", s.text, err)
			}
			hits++
			if round == 0 {
				fmt.Printf("  %-22q answered with %q\n", s.text, hit.Results[0].FileName)
			}
		}
	}
	fmt.Printf("issued %d searches, all answered over TCP\n\n", hits)

	// The vantage node saw everything: mine rules from its capture.
	qs, rs := cap.Snapshot()
	fmt.Printf("vantage capture: %d queries, %d replies\n", len(qs), len(rs))
	pairs := cap.Pairs()
	rules := core.GenerateRuleSet(pairs, 5)
	fmt.Printf("rules mined from the live capture (support >= 5):\n")
	for _, r := range rules.Rules() {
		fmt.Printf("  %v\n", r)
	}
	res := rules.Test(pairs)
	fmt.Printf("\nself-test on the capture: coverage %.2f success %.2f\n",
		res.Coverage(), res.Success())
	fmt.Println("\neach leaf's queries consistently return through one server-side")
	fmt.Println("connection, so the vantage node can forward that leaf's future")
	fmt.Println("queries to just that neighbor instead of flooding all four.")
}
