// Quickstart: mine routing rules from a block of query–reply traffic,
// inspect them, and evaluate them against the next block — the complete
// core loop of the paper in ~40 lines.
package main

import (
	"fmt"

	"arq/internal/core"
	"arq/internal/tracegen"
)

func main() {
	// A synthetic vantage-node trace with the calibrated paper profile:
	// 120 neighbors with churn, Zipf interests, drifting reply paths.
	cfg := tracegen.PaperProfile()
	cfg.BlockSize = 10_000
	cfg.TotalBlocks = 2
	gen := tracegen.New(cfg)

	genBlock, _ := gen.Next()
	testBlock, _ := gen.Next()

	// GENERATE-RULESET: count (source, replier) pairs, prune below
	// support 10 (the paper's default threshold).
	rules := core.GenerateRuleSet(genBlock, 10)
	fmt.Printf("mined %d rules from %d pairs; examples:\n", rules.Len(), len(genBlock))
	for i, r := range rules.Rules() {
		if i == 5 {
			break
		}
		fmt.Println("  ", r)
	}

	// Routing decision: where would we forward a query from this host?
	src := rules.Antecedents()[0]
	fmt.Printf("\nquery from %s would be forwarded to: %v (instead of flooding)\n",
		src, rules.Consequents(src, 2))

	// RULESET-TEST: coverage (α) and success (ρ) on the next block.
	res := rules.Test(testBlock)
	fmt.Printf("\nnext block: N=%d covered=%d successful=%d\n",
		res.N, res.Covered, res.Successful)
	fmt.Printf("coverage α = %.3f   success ρ = %.3f\n", res.Coverage(), res.Success())

	// The same loop, maintained automatically: Sliding Window regenerates
	// the rule set from each block before testing the next.
	sliding := &core.Sliding{Prune: 10}
	cfg.TotalBlocks = 12
	cfg.Seed = 7
	gen = tracegen.New(cfg)
	fmt.Println("\nSliding Window over 11 blocks:")
	for {
		block, ok := gen.Next()
		if !ok {
			break
		}
		step := sliding.Step(block)
		if step.Tested {
			fmt.Printf("  α=%.3f ρ=%.3f (rules: %d)\n",
				step.Result.Coverage(), step.Result.Success(), step.Rules)
		}
	}
}
