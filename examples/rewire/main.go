// Rewire: the paper's §VI topology adaptation, shown at two scales.
//
// First the mechanism on a 5-node chain: the origin asks its neighbor
// where it would forward the origin's queries, connects directly to that
// node, and the next query takes one hop less — exactly the sentence in
// §VI. Then the aggregate effect on a sparse 1,000-node overlay.
package main

import (
	"fmt"

	"arq/internal/adapt"
	"arq/internal/content"
	"arq/internal/overlay"
	"arq/internal/peer"
	"arq/internal/routing"
	"arq/internal/stats"
	"arq/internal/trace"
)

func main() {
	mechanism()
	fmt.Println()
	aggregate()
}

// mechanism demonstrates "one less hop" on a chain 0-1-2-3-4 where node 4
// hosts the content node 0 keeps asking for.
func mechanism() {
	g := overlay.NewGraph(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(i-1, i)
	}
	model := content.Explicit(5, 2, map[int][]trace.InterestID{4: {0}})
	assocs := make([]*routing.Assoc, 5)
	e := peer.NewEngine(g, model, func(u int) peer.Router {
		assocs[u] = routing.NewAssoc(routing.AssocConfig{TopK: 1, Threshold: 2, Decay: 0.9, DecayEvery: 1000})
		return assocs[u]
	})

	// Node 0 queries repeatedly; rules form along the chain.
	for i := 0; i < 5; i++ {
		e.RunQuery(0, 0, 6)
	}
	before := e.RunQuery(0, 0, 6)
	fmt.Printf("chain 0-1-2-3-4, content at node 4\n")
	fmt.Printf("before adaptation: first hit after %d hops\n", before.FirstHitHops)

	// §VI: ask neighbor 1 where it forwards queries from 0, befriend that
	// node.
	added := adapt.Rewire(g, func(v, ante int) []int32 { return assocs[v].Consequents(ante) },
		adapt.Options{MaxNewPerNode: 1, OnAdd: func(u int, consulted, w int32) {
			assocs[u].AdoptShortcut(consulted, w)
		}})
	fmt.Printf("adaptation added edges: %v\n", added)

	// Relearn over the new edge, then requery.
	for i := 0; i < 5; i++ {
		e.RunQuery(0, 0, 6)
	}
	after := e.RunQuery(0, 0, 6)
	fmt.Printf("after adaptation:  first hit after %d hops (one less per pass)\n", after.FirstHitHops)
}

// aggregate runs the adaptation over a sparse overlay and reports the
// population-level change.
func aggregate() {
	const (
		nodes = 1000
		ttl   = 9
		warm  = 12000
		nq    = 1500
	)
	rng := stats.NewRNG(99)
	g := overlay.Random(rng, nodes, 3.2)
	model := content.BuildClustered(rng.Split(), g, content.DefaultConfig())
	assocs := make([]*routing.Assoc, nodes)
	e := peer.NewEngine(g, model, func(u int) peer.Router {
		assocs[u] = routing.NewAssoc(routing.DefaultAssocConfig())
		return assocs[u]
	})
	search := &routing.OneShot{Label: "assoc", E: e, TTL: ttl}

	routing.RunWorkload(stats.NewRNG(1), search, e, warm)
	before := peer.Summarize(routing.RunWorkload(stats.NewRNG(2), search, e, nq))

	added := adapt.Rewire(g, func(v, ante int) []int32 { return assocs[v].Consequents(ante) },
		adapt.Options{MaxNewPerNode: 2, MaxDegree: 12, OnAdd: func(u int, consulted, w int32) {
			assocs[u].AdoptShortcut(consulted, w)
		}})
	routing.RunWorkload(stats.NewRNG(3), search, e, warm)
	after := peer.Summarize(routing.RunWorkload(stats.NewRNG(2), search, e, nq))

	fmt.Printf("sparse overlay: %d nodes, %d edges; adaptation added %d shortcuts\n",
		nodes, g.M()-len(added), len(added))
	fmt.Printf("before: success=%.3f hit-hops=%.2f msgs/query=%.0f\n",
		before.SuccessRate, before.AvgHitHops, before.AvgMessages)
	fmt.Printf("after:  success=%.3f hit-hops=%.2f msgs/query=%.0f\n",
		after.SuccessRate, after.AvgHitHops, after.AvgMessages)
	fmt.Println("\nshortcut edges raise success and shave hops; the cost is a denser")
	fmt.Println("overlay, so fallback floods touch more edges — the trade-off a")
	fmt.Println("deployment would tune with Options.MaxNewPerNode and MaxDegree.")
}
