// Adaptive: explore the trade-off the Adaptive Sliding Window policy
// navigates (§III-B.6, Fig. 4) — rule-set quality versus how often rule
// sets must be regenerated — against Sliding (regenerates every block) and
// Lazy (regenerates on a fixed schedule).
package main

import (
	"fmt"

	"arq/internal/core"
	"arq/internal/metrics"
	"arq/internal/sim"
	"arq/internal/trace"
	"arq/internal/tracegen"
)

func main() {
	const trials = 150
	src := func() trace.Source {
		cfg := tracegen.PaperProfile()
		cfg.TotalBlocks = trials + 1
		return tracegen.New(cfg)
	}

	specs := []sim.Spec{
		{Name: "sliding (every block)", Policy: func() core.Policy { return &core.Sliding{Prune: 10} }, Source: src},
		{Name: "lazy (every 10 blocks)", Policy: func() core.Policy { return &core.Lazy{Prune: 10, Interval: 10} }, Source: src},
	}
	for _, w := range []int{5, 10, 50} {
		w := w
		specs = append(specs, sim.Spec{
			Name:   fmt.Sprintf("adaptive (N=%d)", w),
			Policy: func() core.Policy { return &core.Adaptive{Prune: 10, Window: w, Init: 0.7} },
			Source: src,
		})
	}
	for _, init := range []float64{0.5, 0.9} {
		init := init
		specs = append(specs, sim.Spec{
			Name:   fmt.Sprintf("adaptive (N=10, init=%.1f)", init),
			Policy: func() core.Policy { return &core.Adaptive{Prune: 10, Window: 10, Init: init} },
			Source: src,
		})
	}

	results := sim.Sweep(specs, 0)
	t := metrics.NewTable("Quality vs regeneration cost (150 blocks, paper profile)",
		"policy", "avg coverage", "avg success", "regens", "blocks/regen")
	for _, r := range results {
		bpr := "-"
		if r.Regens > 0 {
			bpr = fmt.Sprintf("%.2f", r.BlocksPerRegen())
		}
		t.AddRow(r.Name, r.MeanCoverage(), r.MeanSuccess(), r.Regens, bpr)
	}
	fmt.Println(t.String())

	sliding, adaptive := results[0], results[2]
	saved := 100 * (1 - float64(adaptive.Regens)/float64(sliding.Regens))
	fmt.Printf("Adaptive (N=10) kept %.0f%%/%.0f%% of Sliding's coverage/success while\n",
		100*adaptive.MeanCoverage()/sliding.MeanCoverage(),
		100*adaptive.MeanSuccess()/sliding.MeanSuccess())
	fmt.Printf("skipping %.0f%% of its rule-set generations — the Fig. 4 result:\n", saved)
	fmt.Printf("regenerate only when measured coverage or success dip below the\n")
	fmt.Printf("running mean of the previous N test values.\n\n")

	// Show the regeneration pattern for a short adaptive run.
	a := &core.Adaptive{Prune: 10, Window: 10, Init: 0.7}
	g := src()
	fmt.Println("first 30 adaptive blocks (.=kept, R=regenerated):")
	line := ""
	for i := 0; i < 31; i++ {
		block, ok := g.Next()
		if !ok {
			break
		}
		step := a.Step(block)
		if !step.Tested {
			continue
		}
		if step.Regenerated {
			line += "R"
		} else {
			line += "."
		}
	}
	fmt.Println(" ", line)
}
