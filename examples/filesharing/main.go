// Filesharing: deploy the association-rule router inside a full
// message-level Gnutella-like network — the workload the paper's
// introduction motivates — and compare its traffic against flooding and
// k-random walks on the same topology, content, and queries.
package main

import (
	"fmt"

	"arq/internal/content"
	"arq/internal/metrics"
	"arq/internal/overlay"
	"arq/internal/peer"
	"arq/internal/routing"
	"arq/internal/stats"
)

func main() {
	const (
		nodes = 1500
		ttl   = 7
		warm  = 15000
		nq    = 2000
	)
	rng := stats.NewRNG(2006)

	// A power-law overlay like measured Gnutella snapshots, with
	// community-clustered interests (interest-based locality).
	g := overlay.GnutellaLike(rng, nodes)
	model := content.BuildClustered(rng.Split(), g, content.DefaultConfig())
	ds := g.DegreeStats()
	fmt.Printf("overlay: %d nodes, %d edges, degree mean %.1f max %.0f\n",
		g.N(), g.M(), ds.Mean(), ds.Max())

	// Three networks, identical except for the router at every node.
	flood := peer.NewEngine(g, model, func(u int) peer.Router { return routing.Flood{} })
	wrng := stats.NewRNG(7)
	walks := peer.NewEngine(g, model, func(u int) peer.Router {
		return &routing.RandomWalk{K: 16, RNG: wrng.Split()}
	})
	assoc := peer.NewEngine(g, model, func(u int) peer.Router {
		return routing.NewAssoc(routing.DefaultAssocConfig())
	})

	// The association-rule nodes learn from live traffic first.
	fmt.Printf("warming association rules with %d queries...\n", warm)
	routing.RunWorkload(stats.NewRNG(3), &routing.OneShot{Label: "assoc", E: assoc, TTL: ttl}, assoc, warm)
	rules := 0
	for u := 0; u < nodes; u++ {
		rules += assoc.Routers[u].(*routing.Assoc).RuleCount()
	}
	fmt.Printf("network now holds %d routing rules (%.1f per node)\n\n",
		rules, float64(rules)/nodes)

	// Identical measured workloads (same seed).
	t := metrics.NewTable("Same 2000 queries under each router",
		"router", "success", "msgs/query", "vs flood", "hit hops")
	var floodMsgs float64
	for _, e := range []struct {
		name string
		s    routing.Searcher
		eng  *peer.Engine
	}{
		{"flooding", &routing.OneShot{Label: "flood", E: flood, TTL: ttl}, flood},
		{"16-random walks", &routing.OneShot{Label: "kwalk", E: walks, TTL: 1024}, walks},
		{"association rules", &routing.OneShot{Label: "assoc", E: assoc, TTL: ttl}, assoc},
	} {
		agg := peer.Summarize(routing.RunWorkload(stats.NewRNG(11), e.s, e.eng, nq))
		if e.name == "flooding" {
			floodMsgs = agg.AvgMessages
		}
		t.AddRow(e.name, agg.SuccessRate, fmt.Sprintf("%.0f", agg.AvgMessages),
			fmt.Sprintf("%.0f%%", 100*agg.AvgMessages/floodMsgs),
			fmt.Sprintf("%.2f", agg.AvgHitHops))
	}
	fmt.Println(t.String())
	fmt.Println("Association rules keep near-flooding success while forwarding each")
	fmt.Println("query to only the top consequent neighbors, flooding just the")
	fmt.Println("uncovered remainder — the paper's traffic-reduction claim.")
}
