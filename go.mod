module arq

go 1.22
